package vwsdk

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/mapping"
)

// Benchmarks regenerating every table and figure of the paper (DESIGN.md §4
// maps each to its experiment id). Each iteration recomputes the full
// artifact, so ns/op measures the cost of the reproduction itself.

func benchExperiment(b *testing.B, f func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if r.Table == nil {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTableI regenerates Table I (E1): per-layer SDK/VW-SDK choices and
// totals on the 512x512 array.
func BenchmarkTableI(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.TableI(experiments.Array512)
	})
}

// BenchmarkFig4 regenerates Fig. 4 (E2): computable channel sizes.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, experiments.Fig4) }

// BenchmarkFig5a regenerates Fig. 5(a) (E3): the worked cycle example.
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, experiments.Fig5a) }

// BenchmarkFig5b regenerates Fig. 5(b) (E4): square vs rectangular speedup
// across IFM sizes.
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, experiments.Fig5b) }

// BenchmarkFig7 regenerates Fig. 7 (E5+E6): tiled channel curves.
func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, experiments.Fig7a)
	benchExperiment(b, experiments.Fig7b)
}

// BenchmarkFig8a regenerates Fig. 8(a) (E7): per-layer speedups.
func BenchmarkFig8a(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Fig8a(experiments.Array512)
	})
}

// BenchmarkFig8b regenerates Fig. 8(b) (E8): speedups across the paper's
// five array sizes.
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, experiments.Fig8b) }

// BenchmarkFig9a regenerates Fig. 9(a) (E9): per-layer utilization.
func BenchmarkFig9a(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Fig9a(experiments.Array512)
	})
}

// BenchmarkFig9b regenerates Fig. 9(b) (E10): utilization vs array size.
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, experiments.Fig9b) }

// BenchmarkAblation regenerates the ablation table (E11).
func BenchmarkAblation(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Ablation(experiments.Array512)
	})
}

// BenchmarkEnergy regenerates the energy table (E12).
func BenchmarkEnergy(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Energy(experiments.Array512)
	})
}

// BenchmarkFunctionalVerify runs the functional-verification experiment
// (E13): all four schemes executed on the crossbar simulator and compared
// against the reference convolution.
func BenchmarkFunctionalVerify(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.VerifyFunctional(uint64(b.N))
	})
}

// BenchmarkSearchVWSDK measures Algorithm 1 itself on representative layers
// (the optimizer a compiler would run per layer).
func BenchmarkSearchVWSDK(b *testing.B) {
	layers := []Layer{
		{Name: "vgg-conv1", IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64},
		{Name: "vgg-conv5", IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256},
		{Name: "resnet-conv1", IW: 112, IH: 112, KW: 7, KH: 7, IC: 3, OC: 64},
		{Name: "resnet-conv5", IW: 7, IH: 7, KW: 3, KH: 3, IC: 512, OC: 512},
	}
	for _, l := range layers {
		b.Run(l.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.SearchVWSDK(l, experiments.Array512); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBaselines measures the SDK and SMD baseline searches.
func BenchmarkSearchBaselines(b *testing.B) {
	l := Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	b.Run("sdk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SearchSDK(l, experiments.Array512); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SearchSMD(l, experiments.Array512); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrossbarExecute measures the functional simulator: one full layer
// execution under the VW-SDK mapping for growing layer sizes.
func BenchmarkCrossbarExecute(b *testing.B) {
	cases := []Layer{
		{Name: "8x8x4x8", IW: 8, IH: 8, KW: 3, KH: 3, IC: 4, OC: 8},
		{Name: "12x12x16x16", IW: 12, IH: 12, KW: 3, KH: 3, IC: 16, OC: 16},
		{Name: "14x14x64x64", IW: 14, IH: 14, KW: 3, KH: 3, IC: 64, OC: 64},
	}
	a := Array{Rows: 256, Cols: 256}
	for _, l := range cases {
		b.Run(l.Name, func(b *testing.B) {
			res, err := core.SearchVWSDK(l, a)
			if err != nil {
				b.Fatal(err)
			}
			ifm := RandFeatureMap(1, l.IC, l.IH, l.IW)
			w := RandWeights(2, l.OC, l.IC, l.KH, l.KW)
			b.ReportMetric(float64(res.Best.Cycles), "pim-cycles")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := mapping.Run(res.Best, ifm, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetworkOptimization measures optimizing every layer of each
// paper network (the whole-model compile step).
func BenchmarkNetworkOptimization(b *testing.B) {
	for _, n := range []Network{VGG13(), ResNet18()} {
		b.Run(n.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var total int64
				for _, l := range n.CoreLayers() {
					res, err := core.SearchVWSDK(l, experiments.Array512)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Best.Cycles
				}
				if total == 0 {
					b.Fatal("no cycles")
				}
			}
		})
	}
}

// BenchmarkUtilization measures eq. 9 evaluation including the exact SDK
// used-cell enumeration.
func BenchmarkUtilization(b *testing.B) {
	l := Layer{IW: 56, IH: 56, KW: 3, KH: 3, IC: 128, OC: 256}
	sdk, err := core.SDK(l, experiments.Array512, Window{W: 4, H: 4})
	if err != nil {
		b.Fatal(err)
	}
	vw, err := core.VW(l, experiments.Array512, Window{W: 4, H: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []Mapping{sdk, vw} {
		b.Run(fmt.Sprintf("%v-%s", m.Scheme, m.PW), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if u := m.Utilization(); u <= 0 {
					b.Fatal("bad utilization")
				}
			}
		})
	}
}

// BenchmarkBitslice regenerates the bit-slicing table (E14).
func BenchmarkBitslice(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Bitslice(experiments.Array512)
	})
}

// BenchmarkChip regenerates the multi-array scheduling table (E15).
func BenchmarkChip(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Chip(experiments.Array512)
	})
}

// BenchmarkBitSlicedExecution measures the bit-sliced crossbar run against
// the ideal run on the same mapping.
func BenchmarkBitSlicedExecution(b *testing.B) {
	l := Layer{IW: 10, IH: 10, KW: 3, KH: 3, IC: 8, OC: 8}
	a := Array{Rows: 96, Cols: 64}
	m, err := VW(l, a, Window{W: 4, H: 4})
	if err != nil {
		b.Fatal(err)
	}
	ifm := RandFeatureMap(1, l.IC, l.IH, l.IW)
	w := RandWeights(2, l.OC, l.IC, l.KH, l.KW)
	b.Run("ideal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := RunOnCrossbar(m, ifm, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("w4c2-a4d2", func(b *testing.B) {
		p := Precision{WeightBits: 4, CellBits: 2, InputBits: 4, DACBits: 2}
		for i := 0; i < b.N; i++ {
			if _, _, err := RunBitSliced(m, p, ifm, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReuse regenerates the input-reuse table (E17).
func BenchmarkReuse(b *testing.B) {
	benchExperiment(b, func() (*experiments.Result, error) {
		return experiments.Reuse(experiments.Array512)
	})
}

// The network-sweep benchmarks compare the serial per-layer search loop
// with the engine-backed parallel sweep on the Table-I workload (both paper
// networks across the paper's five array sizes). "Cold" builds a fresh
// engine per iteration, so it measures pooled candidate evaluation plus
// intra-sweep dedup of repeated layer shapes; "Warm" shares one engine
// across iterations, the steady state of a server re-answering known
// (layer, array) pairs from its LRU cache.

func sweepNetworks() []Network { return []Network{VGG13(), ResNet18()} }

// BenchmarkNetworkSweepSerial is the baseline: every (network, array, layer)
// costed from scratch with the serial Algorithm 1.
func BenchmarkNetworkSweepSerial(b *testing.B) {
	nets := sweepNetworks()
	for i := 0; i < b.N; i++ {
		var total int64
		for _, n := range nets {
			for _, a := range experiments.PaperArrays {
				for _, l := range n.CoreLayers() {
					res, err := core.SearchVWSDK(l, a)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Best.Cycles
				}
			}
		}
		if total == 0 {
			b.Fatal("no cycles")
		}
	}
}

// BenchmarkNetworkSweepEngineCold runs the same sweep through a fresh
// engine each iteration.
func BenchmarkNetworkSweepEngineCold(b *testing.B) {
	nets := sweepNetworks()
	for i := 0; i < b.N; i++ {
		eng := engine.New()
		cells := eng.Sweep(context.Background(), nets, experiments.PaperArrays, nil)
		for _, c := range cells {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
	}
}

// BenchmarkNetworkSweepEngineWarm shares one engine across iterations.
func BenchmarkNetworkSweepEngineWarm(b *testing.B) {
	nets := sweepNetworks()
	eng := engine.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := eng.Sweep(context.Background(), nets, experiments.PaperArrays, nil)
		for _, c := range cells {
			if c.Err != nil {
				b.Fatal(c.Err)
			}
		}
	}
}

// BenchmarkCompile measures the whole-network compile pipeline (search →
// chip schedule → energy) on both paper networks: "cold" with a fresh
// compiler per iteration, "warm" reusing one compiler's search cache.
func BenchmarkCompile(b *testing.B) {
	for _, n := range []Network{VGG13(), ResNet18()} {
		b.Run(n.Name+"-cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(n, PaperArray, CompileOptions{Arrays: 16}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(n.Name+"-warm", func(b *testing.B) {
			comp := NewCompiler(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := comp.Compile(context.Background(), NewCompileRequest(n, PaperArray, CompileOptions{Arrays: 16})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchVWSDKEngine measures the engine's pooled Algorithm 1 on
// the largest single-layer sweep (VGG conv1's 224x224 IFM, ~49k candidate
// windows), cache disabled so every iteration costs the full sweep.
func BenchmarkSearchVWSDKEngine(b *testing.B) {
	l := Layer{Name: "vgg-conv1", IW: 224, IH: 224, KW: 3, KH: 3, IC: 3, OC: 64}
	eng := engine.New(engine.WithCacheSize(0))
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchVWSDK(context.Background(), l, experiments.Array512); err != nil {
			b.Fatal(err)
		}
	}
}
