package vwsdk

// This file re-exports the extension subsystems that go beyond the paper's
// evaluation: finite-precision bit slicing, multi-array chip scheduling,
// and network-level inference (DESIGN.md §7).

import (
	"repro/internal/bitslice"
	"repro/internal/chip"
	"repro/internal/nn"
	"repro/internal/pimarray"
)

// Precision describes finite cell/DAC precision for bit-sliced arithmetic.
// See bitslice.Precision.
type Precision = bitslice.Precision

// FullPrecision returns the degenerate 1-slice/1-pass precision, under
// which bit-sliced costs equal the paper's.
func FullPrecision() Precision { return bitslice.Full() }

// SearchVWSDKWithPrecision runs Algorithm 1 under finite precision: weight
// slices shrink the column budget and input passes multiply the cycles.
func SearchVWSDKWithPrecision(l Layer, a Array, p Precision) (SearchResult, error) {
	return bitslice.Search(l, a, p)
}

// CostWithPrecision costs one window under finite precision (the spatial,
// column-expanded realization).
func CostWithPrecision(l Layer, a Array, pw Window, p Precision) (Mapping, error) {
	return bitslice.Cost(l, a, pw, p)
}

// RunBitSliced executes mapping m with bit-sliced weights and bit-serial
// inputs on a simulated crossbar, recombining digitally; exact for integer
// tensors within the precision's range.
func RunBitSliced(m Mapping, p Precision, ifm *FeatureMap, w *Weights) (*FeatureMap, CrossbarStats, error) {
	return bitslice.Run(m, p, ifm, w)
}

// QuantizeValues clamps and rounds a tensor's backing slice into the signed
// range of the given bit width.
func QuantizeValues(data []float64, bits int) { bitslice.Quantize(data, bits) }

// LayerSchedule is the placement of one mapped layer on a multi-array chip.
// See chip.LayerSchedule.
type LayerSchedule = chip.LayerSchedule

// NetworkSchedule is the layer-sequential chip execution of a network.
type NetworkSchedule = chip.NetworkSchedule

// ScheduleLayer places a mapped layer on a chip with nArrays crossbars.
func ScheduleLayer(m Mapping, nArrays int) (LayerSchedule, error) {
	return chip.ScheduleLayer(m, nArrays)
}

// ScheduleNetwork schedules mapped layers in sequence on a chip.
func ScheduleNetwork(ms []Mapping, nArrays int) (NetworkSchedule, error) {
	return chip.ScheduleNetwork(ms, nArrays)
}

// Model is a feed-forward CNN (conv stages with ReLU/pooling) whose conv
// executor is pluggable. See nn.Model.
type Model = nn.Model

// Stage is one conv block of a Model.
type Stage = nn.Stage

// ConvExec executes one convolution for Model.Infer.
type ConvExec = nn.ConvExec

// ReferenceConv is the golden ConvExec (direct convolution).
func ReferenceConv(l Layer, ifm *FeatureMap, w *Weights) (*FeatureMap, error) {
	return nn.Reference(l, ifm, w)
}

// TinyCNN builds the deterministic three-stage demo CNN.
func TinyCNN(seed uint64) *Model { return nn.TinyCNN(seed) }

// ReLU applies the rectifier element-wise (new tensor).
func ReLU(t *FeatureMap) *FeatureMap { return nn.ReLU(t) }

// MaxPool applies k×k max pooling with stride k.
func MaxPool(t *FeatureMap, k int) *FeatureMap { return nn.MaxPool(t, k) }

// AvgPool applies k×k average pooling with stride k.
func AvgPool(t *FeatureMap, k int) *FeatureMap { return nn.AvgPool(t, k) }

// GlobalAvgPool averages each channel to a single score.
func GlobalAvgPool(t *FeatureMap) []float64 { return nn.GlobalAvgPool(t) }

// WithStuckCells marks a fraction of cells stuck-at-zero (fault injection).
// See pimarray.WithStuckCells.
func WithStuckCells(fraction float64, seed uint64) CrossbarOption {
	return pimarray.WithStuckCells(fraction, seed)
}
