// Package vwsdk is the public API of the VW-SDK reproduction: efficient
// convolutional weight mapping using variable windows for processing-in-
// memory (PIM) architectures (Rhe, Moon, Ko — DATE 2022).
//
// The package finds, for a convolutional layer and a PIM crossbar array, the
// parallel-window shape and channel tiling that minimize computing cycles:
//
//	layer := vwsdk.Layer{Name: "conv4", IW: 14, IH: 14, KW: 3, KH: 3, IC: 256, OC: 256}
//	array := vwsdk.Array{Rows: 512, Cols: 512}
//	res, err := vwsdk.SearchVWSDK(layer, array)
//	// res.Best.TileString() == "4x3x42x256", res.Best.Cycles == 504
//
// Beyond the optimizer it bundles everything needed to reproduce the paper
// and to validate mappings end to end:
//
//   - cost models and searches for the im2col, SMD and SDK baselines;
//   - a functional crossbar simulator with optional quantization and read
//     noise, on which any mapping can be executed and verified bit-for-bit
//     against a reference convolution (Verify, RunOnCrossbar);
//   - the paper's model zoo (VGG-13, ResNet-18) plus extras;
//   - a latency/energy estimator (conversion-dominated, per the paper);
//   - a Pareto-frontier hardware co-design search over array geometry,
//     per-layer-group array assignment, chip count and peripheral gating
//     (Optimize, DesignSpace, Frontier);
//   - generators for every table and figure of the paper's evaluation
//     (Experiments, ExperimentTableI, ...).
//
// The implementation lives in internal/ packages; this package re-exports
// the stable surface via type aliases, so the types below are identical to
// the ones used throughout the repository.
package vwsdk

import (
	"context"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/optimize"
	"repro/internal/pimarray"
	"repro/internal/server"
	"repro/internal/tensor"
)

// Layer describes a convolutional layer (IFM size, kernel, channels, stride,
// padding). See core.Layer.
type Layer = core.Layer

// Array describes a PIM crossbar as Rows×Cols cells. See core.Array.
type Array = core.Array

// Window is a parallel-window shape. See core.Window.
type Window = core.Window

// Mapping is a costed mapping decision. See core.Mapping.
type Mapping = core.Mapping

// TileShape describes one computing cycle's array occupancy. See
// core.TileShape.
type TileShape = core.TileShape

// Scheme identifies a mapping scheme.
type Scheme = core.Scheme

// Mapping schemes.
const (
	SchemeIm2col = core.SchemeIm2col
	SchemeSMD    = core.SchemeSMD
	SchemeSDK    = core.SchemeSDK
	SchemeVWSDK  = core.SchemeVWSDK
)

// SearchResult is the outcome of a mapping search. See core.Result.
type SearchResult = core.Result

// Variant selects an ablation of the VW-SDK search.
type Variant = core.Variant

// Ablation variants (DESIGN.md §5).
const (
	VariantFull            = core.VariantFull
	VariantSquareTiled     = core.VariantSquareTiled
	VariantRectFullChannel = core.VariantRectFullChannel
)

// ErrInfeasible marks windows that cannot be mapped at all.
var ErrInfeasible = core.ErrInfeasible

// Im2col costs the im2col mapping (paper Fig. 2a).
func Im2col(l Layer, a Array) (Mapping, error) { return core.Im2col(l, a) }

// SMD costs sub-matrix duplication with the given factor (paper Fig. 2b).
func SMD(l Layer, a Array, dup int) (Mapping, error) { return core.SMD(l, a, dup) }

// SDK costs the shifted-and-duplicated-kernel baseline for a square window
// with entire channels (paper Fig. 2c).
func SDK(l Layer, a Array, pw Window) (Mapping, error) { return core.SDK(l, a, pw) }

// VW costs the paper's variable-window mapping for one window (eqs. 3–8).
func VW(l Layer, a Array, pw Window) (Mapping, error) { return core.VW(l, a, pw) }

// SearchVWSDK runs Algorithm 1: the optimal parallel-window search. The
// default implementation walks only breakpoints of eq. 8's step functions
// (O(√Rows + √Cols) cost classes per IFM row instead of O(PaddedW)
// candidates) and is bit-identical to the brute-force sweep. It is the
// context-free convenience form of SearchVWSDKContext.
func SearchVWSDK(l Layer, a Array) (SearchResult, error) { return core.SearchVWSDK(l, a) }

// SearchVWSDKContext is SearchVWSDK under a caller context: the search loop
// runs a cooperative cancellation checkpoint once per candidate row, so a
// cancelled or expired context actually stops the work.
func SearchVWSDKContext(ctx context.Context, l Layer, a Array) (SearchResult, error) {
	return core.SearchVWSDKContext(ctx, l, a)
}

// SearchStats describes how a VW-SDK search was executed: which
// implementation path ran and how many candidates reached the full cost
// model. See core.SearchStats.
type SearchStats = core.SearchStats

// Search implementation paths reported in SearchStats.Path.
const (
	SearchPathClosedForm = core.PathClosedForm
	SearchPathPruned     = core.PathPruned
)

// ClosedFormEligible reports whether layer l is served by the closed-form
// argmin search (dense, unit strides; DESIGN.md §8) rather than the
// breakpoint-pruned enumerator. Both paths return bit-identical results;
// this only predicts which one SearchVWSDK runs.
func ClosedFormEligible(l Layer) bool { return core.ClosedFormEligible(l) }

// SearchVWSDKInstrumented is SearchVWSDKContext plus execution statistics:
// the same Result, and a SearchStats reporting the path taken and the number
// of full cost-model evaluations.
func SearchVWSDKInstrumented(ctx context.Context, l Layer, a Array) (SearchResult, SearchStats, error) {
	return core.SearchVWSDKInstrumented(ctx, l, a)
}

// SearchVWSDKExhaustive runs the brute-force Algorithm 1 sweep — the
// reference the pruned default is differentially tested against. It returns
// the same Best and Im2col as SearchVWSDK.
func SearchVWSDKExhaustive(l Layer, a Array) (SearchResult, error) {
	return core.SearchVWSDKExhaustive(l, a)
}

// ExhaustiveSearchCandidates returns the number of candidate windows the
// brute-force search for variant v would hand to the cost model for layer l
// (the candidates the pruned search avoids).
func ExhaustiveSearchCandidates(l Layer, v Variant) int64 {
	return core.ExhaustiveCandidates(l, v)
}

// SearchSDK runs the square-window SDK baseline search (context-free form
// of SearchSDKContext).
func SearchSDK(l Layer, a Array) (SearchResult, error) { return core.SearchSDK(l, a) }

// SearchSDKContext is SearchSDK under a caller context.
func SearchSDKContext(ctx context.Context, l Layer, a Array) (SearchResult, error) {
	return core.SearchSDKContext(ctx, l, a)
}

// SearchSMD runs the sub-matrix-duplication baseline search (context-free
// form of SearchSMDContext).
func SearchSMD(l Layer, a Array) (SearchResult, error) { return core.SearchSMD(l, a) }

// SearchSMDContext is SearchSMD under a caller context.
func SearchSMDContext(ctx context.Context, l Layer, a Array) (SearchResult, error) {
	return core.SearchSMDContext(ctx, l, a)
}

// SearchVariant runs an ablated VW-SDK search (breakpoint-pruned, like
// SearchVWSDK; context-free form of SearchVariantContext).
func SearchVariant(l Layer, a Array, v Variant) (SearchResult, error) {
	return core.SearchVariant(l, a, v)
}

// SearchVariantContext is SearchVariant under a caller context.
func SearchVariantContext(ctx context.Context, l Layer, a Array, v Variant) (SearchResult, error) {
	return core.SearchVariantContext(ctx, l, a, v)
}

// SearchVariantExhaustive runs an ablated search with the brute-force
// candidate sweep instead of breakpoint pruning.
func SearchVariantExhaustive(l Layer, a Array, v Variant) (SearchResult, error) {
	return core.SearchVariantExhaustive(l, a, v)
}

// Network is a named list of conv layers. See model.Network.
type Network = model.Network

// ConvLayer is a network entry with an occurrence count.
type ConvLayer = model.ConvLayer

// VGG13 returns the paper's VGG-13 layer table (Table I).
func VGG13() Network { return model.VGG13() }

// ResNet18 returns the paper's ResNet-18 layer table (Table I).
func ResNet18() Network { return model.ResNet18() }

// VGG16 returns a VGG-16 layer table (extra network).
func VGG16() Network { return model.VGG16() }

// AlexNet returns an AlexNet layer table (extra network, strided conv1).
func AlexNet() Network { return model.AlexNet() }

// MobileNetV2 returns the MobileNet-V2 layer table (inverted residuals:
// pointwise expand, depthwise 3×3, pointwise project).
func MobileNetV2() Network { return model.MobileNetV2() }

// ResNeXt50 returns the ResNeXt-50 (32×4d) layer table (grouped 3×3
// bottlenecks with cardinality 32).
func ResNeXt50() Network { return model.ResNeXt50() }

// Networks returns every predefined network.
func Networks() []Network { return model.All() }

// NetworkByName looks a predefined network up by its name, e.g. "VGG-13".
func NetworkByName(name string) (Network, error) { return model.ByName(name) }

// FeatureMap is a C×H×W activation tensor.
type FeatureMap = tensor.Tensor3

// Weights is an O×C×H×W kernel tensor.
type Weights = tensor.Tensor4

// NewFeatureMap allocates a zeroed C×H×W feature map.
func NewFeatureMap(c, h, w int) *FeatureMap { return tensor.NewTensor3(c, h, w) }

// NewWeights allocates a zeroed O×C×H×W weight tensor.
func NewWeights(o, c, h, w int) *Weights { return tensor.NewTensor4(o, c, h, w) }

// RandFeatureMap returns a deterministic random integer feature map,
// suitable for exact functional verification.
func RandFeatureMap(seed uint64, c, h, w int) *FeatureMap {
	return tensor.RandTensor3(seed, c, h, w)
}

// RandWeights returns deterministic random integer weights.
func RandWeights(seed uint64, o, c, h, w int) *Weights {
	return tensor.RandTensor4(seed, o, c, h, w)
}

// Plan is a physical execution plan for a mapping. See mapping.Plan.
type Plan = mapping.Plan

// NewPlan builds the physical weight-placement plan for a costed mapping.
func NewPlan(m Mapping) (*Plan, error) { return mapping.NewPlan(m) }

// CrossbarStats are the per-run statistics of the simulated crossbar.
type CrossbarStats = pimarray.Stats

// CrossbarOption configures crossbar non-idealities.
type CrossbarOption = pimarray.Option

// WithQuantization programs weights at limited precision. See
// pimarray.WithQuantization.
func WithQuantization(bits int, maxAbs float64) CrossbarOption {
	return pimarray.WithQuantization(bits, maxAbs)
}

// WithReadNoise adds deterministic Gaussian read noise. See
// pimarray.WithReadNoise.
func WithReadNoise(sigma float64, seed uint64) CrossbarOption {
	return pimarray.WithReadNoise(sigma, seed)
}

// RunOnCrossbar executes mapping m on a simulated crossbar of m.Array's size
// and returns the output feature map with the run statistics.
func RunOnCrossbar(m Mapping, ifm *FeatureMap, w *Weights, opts ...CrossbarOption) (*FeatureMap, CrossbarStats, error) {
	return mapping.Run(m, ifm, w, opts...)
}

// Verify executes mapping m on deterministic inputs and compares the
// crossbar output bit-for-bit with the reference convolution.
func Verify(m Mapping, seed uint64) error { return mapping.Verify(m, seed) }

// VerifyAllSchemes verifies layer l on array a under all four schemes.
func VerifyAllSchemes(l Layer, a Array, seed uint64) error {
	return mapping.VerifyAllSchemes(l, a, seed)
}

// EnergyModel holds latency/energy constants. See energy.Model.
type EnergyModel = energy.Model

// EnergyReport is a latency/energy estimate. See energy.Report.
type EnergyReport = energy.Report

// DefaultEnergyModel returns the synthetic reference constants under which
// conversions dominate (>98%), as the paper assumes.
func DefaultEnergyModel() EnergyModel { return energy.Default() }

// Experiment is one regenerated table or figure of the paper.
type Experiment = experiments.Result

// Experiments regenerates every table and figure of the paper's evaluation
// plus the documented extensions (DESIGN.md §4).
func Experiments() ([]*Experiment, error) { return experiments.All() }

// PaperArray is the 512×512 array the paper evaluates on.
var PaperArray = experiments.Array512

// ExperimentTableI regenerates the paper's Table I on array a.
func ExperimentTableI(a Array) (*Experiment, error) { return experiments.TableI(a) }

// ExperimentFig8a regenerates Fig. 8(a) (per-layer speedups) on array a.
func ExperimentFig8a(a Array) (*Experiment, error) { return experiments.Fig8a(a) }

// ExperimentFig8b regenerates Fig. 8(b) (speedup vs array size).
func ExperimentFig8b() (*Experiment, error) { return experiments.Fig8b() }

// ExperimentFig9a regenerates Fig. 9(a) (utilization per layer) on array a.
func ExperimentFig9a(a Array) (*Experiment, error) { return experiments.Fig9a(a) }

// NetworkResult aggregates per-layer search results and network totals.
type NetworkResult = core.NetworkResult

// SearchNetwork optimizes every layer concurrently and sums the totals
// (context-free form of SearchNetworkContext).
func SearchNetwork(layers []Layer, a Array) (NetworkResult, error) {
	return core.SearchNetwork(layers, a)
}

// SearchNetworkContext is SearchNetwork under a caller context; cancelling
// it stops every in-flight layer search at its next checkpoint.
func SearchNetworkContext(ctx context.Context, layers []Layer, a Array) (NetworkResult, error) {
	return core.SearchNetworkContext(ctx, layers, a)
}

// Searcher abstracts the mapping searches; both the serial reference
// implementation (SerialSearcher) and the concurrent Engine satisfy it.
// Every method is context-first (see core.Searcher).
type Searcher = core.Searcher

// SerialSearcher returns the Searcher backed by the single-threaded
// reference algorithms.
func SerialSearcher() Searcher { return core.Serial{} }

// ExhaustiveSearcher returns the Searcher backed by the brute-force sweeps,
// for differential testing and benchmarking against the pruned default.
func ExhaustiveSearcher() Searcher { return core.Exhaustive{} }

// Engine is a concurrent, memoizing search engine: per-layer searches and
// batch-sweep cells fan across a worker pool (each individual search runs
// the breakpoint-pruned enumerator), and repeated (layer shape, array,
// search) combinations are served from an LRU cache. Results are
// bit-identical to the serial searches. See engine.Engine.
type Engine = engine.Engine

// EngineOption configures an Engine.
type EngineOption = engine.Option

// EngineStats are an Engine's cumulative counters.
type EngineStats = engine.Stats

// SweepCell identifies one (network, array, variant) combination of a batch
// sweep.
type SweepCell = engine.Cell

// SweepCellResult is the outcome of one batch-sweep cell.
type SweepCellResult = engine.CellResult

// NewEngine returns a concurrent search engine. With no options it uses
// GOMAXPROCS workers and a 4096-entry result cache.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithWorkers bounds the engine's worker pool; n < 1 restores the default.
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithCacheSize sets the engine's LRU capacity in results; 0 disables
// caching.
func WithCacheSize(n int) EngineOption { return engine.WithCacheSize(n) }

// WithExhaustiveSearch routes an engine's VW-SDK and variant searches
// through the brute-force sweeps instead of the breakpoint-pruned default,
// for differential testing and benchmarking.
func WithExhaustiveSearch() EngineOption { return engine.WithExhaustiveSearch() }

// SearchNetworkParallel optimizes every layer through a fresh engine —
// layer searches fan across the worker pool and repeated layer shapes
// are costed once. Results are bit-identical to SearchNetwork. Callers
// optimizing several networks or arrays should build one Engine (or use
// Engine.Sweep) to share its cache across calls. It is the context-free
// convenience form of SearchNetworkParallelContext.
func SearchNetworkParallel(layers []Layer, a Array, opts ...EngineOption) (NetworkResult, error) {
	return SearchNetworkParallelContext(context.Background(), layers, a, opts...)
}

// SearchNetworkParallelContext is SearchNetworkParallel under a caller
// context: cancellation propagates into the engine's worker pool and every
// search loop.
func SearchNetworkParallelContext(ctx context.Context, layers []Layer, a Array, opts ...EngineOption) (NetworkResult, error) {
	return engine.New(opts...).SearchNetwork(ctx, layers, a)
}

// ExplainSearch renders a step-by-step, equation-referenced derivation of a
// search result (see Mapping.Explain via core).
func ExplainSearch(r SearchResult) string { return core.ExplainSearch(r) }

// Compiler is the whole-network compilation pipeline: searches, chip
// scheduling, energy estimation and physical planning in one call. See
// compile.Compiler.
type Compiler = compile.Compiler

// CompileOptions selects the mapping scheme, ablation variant, chip size,
// energy model and whether physical plans are built. The zero value compiles
// the full VW-SDK search for a single-array chip.
type CompileOptions = compile.Options

// CompileScheme selects the mapping search a compilation runs; the zero
// value is the paper's VW-SDK search.
type CompileScheme = compile.Scheme

// The four mapping searches a Compiler can run.
const (
	CompileVWSDK  = compile.VWSDK
	CompileIm2col = compile.Im2col
	CompileSMD    = compile.SMD
	CompileSDK    = compile.SDK
)

// NetworkPlan is a compiled network: per-layer mapping decisions, chip
// schedules, energy reports and whole-network totals. See
// compile.NetworkPlan.
type NetworkPlan = compile.NetworkPlan

// LayerPlan is one layer of a compiled network.
type LayerPlan = compile.LayerPlan

// PlanTotals are a NetworkPlan's whole-network aggregates.
type PlanTotals = compile.Totals

// CompileRequest is the canonical description of one compilation — the one
// request type shared by CompileContext, CompileKey, cmd/vwsdk's flags and
// vwsdkd's HTTP bodies. See compile.Request.
type CompileRequest = compile.Request

// NewCompileRequest assembles a CompileRequest from its parts.
func NewCompileRequest(n Network, a Array, opts CompileOptions) CompileRequest {
	return compile.NewRequest(n, a, opts)
}

// NewCompiler returns a Compiler running its searches through s; a nil s
// selects a fresh concurrent engine. Share one Compiler across compilations
// to reuse its search cache. Compiler.Compile is context-first:
// Compile(ctx, CompileRequest).
func NewCompiler(s Searcher) *Compiler { return compile.New(s) }

// Compile compiles network n for array a under opts through a fresh
// concurrent engine. Callers compiling several networks, arrays or option
// sets should build one NewCompiler and reuse it; callers that need
// cancellation or deadlines should use CompileContext, of which this is the
// context-free convenience form.
func Compile(n Network, a Array, opts CompileOptions) (*NetworkPlan, error) {
	return CompileContext(context.Background(), NewCompileRequest(n, a, opts))
}

// CompileContext compiles one canonical request through a fresh concurrent
// engine under ctx: cancelling it aborts every in-flight layer search at
// its next checkpoint and returns an error wrapping ctx.Err().
func CompileContext(ctx context.Context, req CompileRequest) (*NetworkPlan, error) {
	return compile.New(nil).Compile(ctx, req)
}

// NetworkPlanFromJSON deserializes a plan produced by NetworkPlan.ToJSON and
// validates that its totals are consistent with its per-layer entries.
func NetworkPlanFromJSON(data []byte) (*NetworkPlan, error) { return compile.FromJSON(data) }

// NetworkFromJSON parses a JSON network spec (the -network file format of
// cmd/vwsdk; see the README), so arbitrary user CNNs can be compiled.
func NetworkFromJSON(data []byte) (Network, error) { return model.FromJSON(data) }

// NetworkToJSON serializes a network as a spec NetworkFromJSON accepts.
func NetworkToJSON(n Network) ([]byte, error) { return model.ToJSON(n) }

// SingleLayerNetwork wraps one layer as a one-layer network, the form the
// compile pipeline consumes.
func SingleLayerNetwork(l Layer) Network { return model.Single(l) }

// CompileKey returns the canonical cache key of one compilation — two calls
// with the same key would produce equivalent plans, so serving layers can
// memoize Compile on it. It is the argument-triple convenience form of
// CompileRequestKey.
func CompileKey(n Network, a Array, opts CompileOptions) (string, error) {
	return compile.Key(compile.NewRequest(n, a, opts))
}

// CompileRequestKey is CompileKey on the canonical request type.
func CompileRequestKey(req CompileRequest) (string, error) { return compile.Key(req) }

// AppendCompileKey appends the canonical cache key of req to dst and returns
// the extended slice — the allocation-free form of CompileRequestKey for
// serving layers that key caches by []byte.
func AppendCompileKey(dst []byte, req CompileRequest) ([]byte, error) {
	return compile.AppendKey(dst, req)
}

// Server is the HTTP compile service behind cmd/vwsdkd: synchronous
// POST /v1/compile and /v1/sweep plus the asynchronous job API
// (POST/GET/DELETE /v1/jobs) on one shared engine, with a whole-plan LRU
// cache, singleflight coalescing of identical concurrent requests, bounded
// concurrency, per-request cancellation (client disconnects stop the
// underlying search) and structured errors. A *Server is an http.Handler.
// See server.Server.
type Server = server.Server

// ServerConfig configures a Server; the zero value is usable.
type ServerConfig = server.Config

// ServerStats is the /stats payload: server, plan-cache and engine
// counters.
type ServerStats = server.Stats

// NewServer returns the compile service as an http.Handler:
//
//	http.ListenAndServe(":8080", vwsdk.NewServer(vwsdk.ServerConfig{}))
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// DesignSpace describes a hardware co-design search space: candidate array
// geometries (assigned per layer group, so different parts of a network can
// run on differently sized arrays), chip counts and peripheral-gating
// settings, all crossed into design points. See optimize.DesignSpace.
type DesignSpace = optimize.DesignSpace

// Frontier is the outcome of a design-space search: the non-dominated design
// points under (cycles, energy, area) plus the enumeration counters. See
// optimize.Frontier.
type Frontier = optimize.Frontier

// FrontierPoint is one non-dominated design point: its per-group array
// assignment, chip count, gating setting and metrics.
type FrontierPoint = optimize.FrontierPoint

// OptimizeEvent is one incremental frontier decision (admit, evict or
// reject) emitted while a design-space search runs.
type OptimizeEvent = optimize.Event

// OptimizeMetrics is a design point's score: total cycles, total energy and
// total cell area.
type OptimizeMetrics = optimize.Metrics

// Optimizer searches design spaces through a shared Compiler, so every
// design point's layer searches land in one engine memoization — a (layer,
// array) cell shared by many design points is searched exactly once. See
// optimize.Optimizer.
type Optimizer = optimize.Optimizer

// NewOptimizer returns an Optimizer running its compilations through c; a
// nil c selects a fresh compiler on a fresh concurrent engine. Share one
// Optimizer (or its Compiler) across searches to reuse the search cache.
func NewOptimizer(c *Compiler) *Optimizer { return optimize.New(c) }

// Optimize searches space through a fresh compiler and returns the Pareto
// frontier. Callers that need cancellation, incremental events or engine
// sharing should build a NewOptimizer and call its Run method, of which this
// is the context-free convenience form.
func Optimize(space DesignSpace) (*Frontier, error) {
	return optimize.New(nil).Run(context.Background(), space, nil)
}

// DesignSpaceFromJSON parses a design-space spec (the -optimize file format
// of cmd/vwsdk and the POST /v1/optimize body; see the README) and validates
// it.
func DesignSpaceFromJSON(data []byte) (DesignSpace, error) { return optimize.FromJSON(data) }

// DesignSpaceToJSON serializes a design space as a spec DesignSpaceFromJSON
// accepts, with the network inlined.
func DesignSpaceToJSON(s DesignSpace) ([]byte, error) { return s.ToJSON() }

// CompileAxes enumerates compile-option candidates knob by knob — the
// searchable form of CompileOptions the optimizer's design points are built
// from. Each unset axis contributes the knob's zero value, so the zero
// CompileAxes yields exactly the zero CompileOptions. See compile.Axes.
type CompileAxes = compile.Axes
